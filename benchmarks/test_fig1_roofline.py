"""Figure 1c: roofline analysis of GEMM precision configurations on A100 and H100.

Regenerates the attainable-throughput curves (TOPS vs batch size / arithmetic intensity) for
FP16, W8A8, FP8, W4A16, W4A8 and, on A100, W4A4 — plus the ridge (memory-to-compute
transition) batch size per configuration.
"""

import pytest

from repro.costmodel import STANDARD_CONFIGS, ridge_points, roofline_curve
from repro.gpu import A100, H100
from repro.reporting import format_series, format_table

BATCH_SIZES = [1, 2, 4, 8, 16, 32, 64, 128, 150, 256, 300, 512, 1024]


def build_roofline(gpu):
    curves = {}
    for name, config in STANDARD_CONFIGS.items():
        if not gpu.supports_precision(config.mma_precision):
            continue
        points = roofline_curve(gpu, config, BATCH_SIZES)
        curves[name] = [p.attainable_tops / 1e12 for p in points]
    return curves


@pytest.mark.parametrize("gpu", [A100, H100], ids=lambda g: g.name)
def test_fig1_roofline(benchmark, emit, gpu):
    curves = benchmark(build_roofline, gpu)
    series_text = format_series(
        "batch", BATCH_SIZES, curves,
        title=f"Figure 1c — attainable TOPS vs batch size on {gpu.name}",
        float_fmt="{:.1f}",
    )
    ridges = ridge_points(gpu)
    ridge_text = format_table(
        ["config", "ridge batch size"],
        sorted(ridges.items()),
        title=f"Memory/compute transition points on {gpu.name} (paper §3.3: W4A8≈150, W8A8≈300 on H100)",
    )
    emit(f"fig1_roofline_{gpu.name.lower()}", series_text + "\n\n" + ridge_text)

    # Shape assertions: W4A8 doubles W8A8's memory-bound throughput and halves its ridge.
    assert curves["w4a8"][0] == pytest.approx(2 * curves["w8a8"][0])
    assert ridges["w4a8"] == pytest.approx(ridges["w8a8"] / 2)
