"""Figure 13: ablation of LiquidGEMM — Baseline, +LQQ, +ExCP, +ImFP.

Runs the event-driven warp-group pipeline simulator for the four ablation configurations on
the single-layer GEMM workloads of LLaMA2-7B/13B/70B and Mixtral-8x7B across batch sizes, and
reports speedups relative to the Baseline (QServe-style dequantization, serial pipeline).
Shapes to reproduce: LQQ alone helps once compute-bound (paper: up to 1.29x), ExCP regresses
below 1.0 at small batch, ImFP is the best configuration everywhere.
"""

import pytest

from repro.kernels import ablation_kernels
from repro.reporting import format_series
from repro.serving import get_model
from repro.workloads import PAPER_BATCH_SIZES, decode_layer_gemms

MODELS = ["llama2-7b", "llama2-13b", "llama2-70b", "mixtral-8x7b"]


def layer_latency(kernel, model, batch):
    gemms = decode_layer_gemms(model, batch)
    if model.is_moe:
        total = sum(
            kernel.estimate(s, "H800", use_pipeline_sim=True).latency_s
            for s in gemms.attention_gemms()
        )
        total += kernel.estimate(
            gemms.gate_up[0], "H800", use_pipeline_sim=True, group_sizes=gemms.gate_up
        ).latency_s
        total += kernel.estimate(
            gemms.down[0], "H800", use_pipeline_sim=True, group_sizes=gemms.down
        ).latency_s
    else:
        total = sum(
            kernel.estimate(s, "H800", use_pipeline_sim=True).latency_s for s in gemms.all()
        )
    return total


def build_ablation(model_name):
    model = get_model(model_name)
    kernels = ablation_kernels()
    latencies = {
        name: [layer_latency(kernel, model, b) for b in PAPER_BATCH_SIZES]
        for name, kernel in kernels.items()
    }
    speedups = {
        name: [latencies["baseline"][i] / latencies[name][i] for i in range(len(PAPER_BATCH_SIZES))]
        for name in kernels
    }
    return speedups


@pytest.mark.parametrize("model_name", MODELS)
def test_fig13_ablation(benchmark, emit, model_name):
    speedups = benchmark(build_ablation, model_name)
    text = format_series(
        "batch", list(PAPER_BATCH_SIZES), speedups,
        title=f"Figure 13 — ablation speedup over Baseline on {model_name}",
    )
    emit(f"fig13_ablation_{model_name}", text)

    largest = -1
    # LQQ alone provides a clear speedup once the problem is compute-bound.
    assert speedups["lqq"][largest] > 1.15
    # ExCP regresses below the baseline at the smallest batch (sync + round-trip overhead)...
    assert speedups["excp"][0] < 1.0
    # ...but becomes beneficial (or at worst neutral, for the memory-bound per-expert GEMMs of
    # the MoE model) at large batch.
    excp_floor = 1.0 if model_name == "mixtral-8x7b" else 1.1
    assert speedups["excp"][largest] >= excp_floor
    # ImFP is the best configuration at every batch size.
    for i in range(len(PAPER_BATCH_SIZES)):
        assert speedups["imfp"][i] >= max(speedups["lqq"][i], speedups["excp"][i]) - 0.01
        assert speedups["imfp"][i] >= 0.99
