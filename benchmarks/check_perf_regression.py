#!/usr/bin/env python3
"""CI perf regression gate for the scheduler simulation harness.

Compares the fast-mode harness throughputs from a just-produced
``BENCH_scheduler.fast.json`` against the checked-in baselines
(``benchmarks/perf_baseline.json``) and fails when a gated section drops below
``min_fraction`` of its baseline.  Two sections are gated, covering both halves of the
fast-forward machinery:

* ``trace_simulation`` — the decode-dominated path (analytic decode jumps);
* ``mixed_phase`` — the KV-constrained prefill-heavy path (pinned mixed-epoch jumps),
  which ran interpretively before PR 5 and would silently fall back to interpretive
  again if the mixed fast path regressed;
* ``prefix_cache`` — the shared-prefix agent-swarm path with the radix cache enabled,
  guarding both the O(prefix blocks) trie lookups in admission and the cache-enabled
  fast-forward proofs (a cache bug that forced stepwise execution would crater this);
* ``sweep_grid`` — end-to-end cell throughput of the 1,120-cell kernel-backend grid
  (``cells_per_s``), guarding the once-per-configuration backend/engine resolution: a
  backend rebuild accidentally moved into the per-cell path would crater this.

A fifth check, ``tracing_off_overhead``, gates the telemetry layer's null path: the
``tracing`` section re-measures the ``trace_simulation`` workload tracer-off, and its
``off_vs_baseline_ratio`` (baseline wall / tracer-off wall, both from the same run on the
same runner, so runner speed cancels out) must stay above
``tracing_off_overhead_min_ratio`` — a default-constructed tracer or a hook doing work
before its ``is None`` guard would drag the ratio down.

The fraction is deliberately generous (default 0.5x): CI runners are slower and noisier
than the machines that set the baselines, and this gate exists to catch *algorithmic*
regressions — a fast path silently disabled, an accidental O(n^2) in the hot loop — not
2% jitter.  When a PR legitimately changes the perf envelope, re-baseline by editing
``perf_baseline.json`` alongside it.

Run:  python benchmarks/check_perf_regression.py BENCH_scheduler.fast.json
"""

import argparse
import json
import os
import sys

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "perf_baseline.json")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", help="bench_scheduler.py output to check")
    parser.add_argument("--baseline", default=BASELINE_PATH,
                        help="baseline file (default: benchmarks/perf_baseline.json)")
    args = parser.parse_args()

    with open(args.bench_json, encoding="utf-8") as fh:
        payload = json.load(fh)
    with open(args.baseline, encoding="utf-8") as fh:
        baseline = json.load(fh)

    min_fraction = float(baseline["min_fraction"])
    failed = False
    for section, keys, baseline_key, unit in (
        ("trace_simulation", ("harness", "iterations_per_s"),
         "trace_simulation_iterations_per_s", "it/s"),
        ("mixed_phase", ("harness", "iterations_per_s"),
         "mixed_phase_iterations_per_s", "it/s"),
        ("prefix_cache", ("harness", "iterations_per_s"),
         "prefix_cache_iterations_per_s", "it/s"),
        ("sweep_grid", ("cells_per_s",), "sweep_grid_cells_per_s", "cells/s"),
    ):
        measured = payload[section]
        for key in keys:
            measured = measured[key]
        measured = float(measured)
        reference = float(baseline[baseline_key])
        floor = reference * min_fraction
        print(f"{section:<17}: {measured:>10,.0f} {unit}  "
              f"(baseline {reference:,.0f}, floor {min_fraction:g}x = {floor:,.0f})")
        if measured < floor:
            failed = True
            print(
                f"FAIL: {section} at {measured:,.0f} {unit} is below {floor:,.0f} "
                f"({min_fraction:g}x of the checked-in baseline) — the simulator hot "
                "path regressed, or this runner is pathologically slow. If the change "
                "is intentional, update benchmarks/perf_baseline.json in the same PR."
            )
    ratio = float(payload["tracing"]["harness"]["off_vs_baseline_ratio"])
    min_ratio = float(baseline["tracing_off_overhead_min_ratio"])
    print(f"{'tracing_off':<17}: {ratio:>10.3f} x    "
          f"(tracer-off vs baseline wall, floor {min_ratio:g}x)")
    if ratio < min_ratio:
        failed = True
        print(
            f"FAIL: tracer-off re-measure ran at {ratio:.3f}x the trace_simulation "
            f"baseline (floor {min_ratio:g}x) — the null-tracer hooks are no longer "
            "free. Both walls come from the same run, so this is not runner noise."
        )
    if failed:
        return 1
    print("OK: within the regression budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
