#!/usr/bin/env python3
"""CI perf regression gate for the scheduler simulation harness.

Compares the fast-mode ``trace_simulation.harness.iterations_per_s`` from a just-produced
``BENCH_scheduler.fast.json`` against the checked-in baseline
(``benchmarks/perf_baseline.json``) and fails when throughput drops below
``min_fraction`` of it.

The fraction is deliberately generous (default 0.5x): CI runners are slower and noisier
than the machines that set the baseline, and this gate exists to catch *algorithmic*
regressions — a fast path silently disabled, an accidental O(n^2) in the hot loop — not
2% jitter.  When a PR legitimately changes the perf envelope, re-baseline by editing
``perf_baseline.json`` alongside it.

Run:  python benchmarks/check_perf_regression.py BENCH_scheduler.fast.json
"""

import argparse
import json
import os
import sys

BASELINE_PATH = os.path.join(os.path.dirname(__file__), "perf_baseline.json")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", help="bench_scheduler.py output to check")
    parser.add_argument("--baseline", default=BASELINE_PATH,
                        help="baseline file (default: benchmarks/perf_baseline.json)")
    args = parser.parse_args()

    with open(args.bench_json, encoding="utf-8") as fh:
        payload = json.load(fh)
    with open(args.baseline, encoding="utf-8") as fh:
        baseline = json.load(fh)

    measured = float(payload["trace_simulation"]["harness"]["iterations_per_s"])
    reference = float(baseline["trace_simulation_iterations_per_s"])
    min_fraction = float(baseline["min_fraction"])
    floor = reference * min_fraction

    print(f"measured : {measured:,.0f} scheduler iterations/s")
    print(f"baseline : {reference:,.0f} (floor = {min_fraction:g}x = {floor:,.0f})")
    if measured < floor:
        print(
            f"FAIL: {measured:,.0f} it/s is below {floor:,.0f} "
            f"({min_fraction:g}x of the checked-in baseline) — the simulator hot path "
            "regressed, or this runner is pathologically slow. If the change is "
            "intentional, update benchmarks/perf_baseline.json in the same PR."
        )
        return 1
    print("OK: within the regression budget")
    return 0


if __name__ == "__main__":
    sys.exit(main())
