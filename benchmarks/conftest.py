"""Shared helpers for the benchmark harnesses.

Each benchmark file regenerates one table or figure from the paper's evaluation section.  The
``emit`` fixture prints the regenerated rows/series (visible with ``pytest -s``) and also
writes them to ``benchmarks/results/<name>.txt`` so the output survives pytest's capture.
"""

import os

import pytest

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


@pytest.fixture(scope="session")
def results_dir():
    os.makedirs(RESULTS_DIR, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def emit(results_dir):
    """Return a function that prints a rendered table and persists it to the results dir."""

    def _emit(name: str, text: str) -> str:
        print("\n" + text + "\n")
        path = os.path.join(results_dir, f"{name}.txt")
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(text + "\n")
        return path

    return _emit
