"""Section 7.1 accuracy claim: LiquidQuant preserves quantization fidelity.

The paper evaluates perplexity and zero-shot accuracy on real checkpoints and reports that LQQ
preserves accuracy; with no checkpoints or datasets available offline, this harness reproduces
the claim at the quantization-error level (see DESIGN.md): LQQ's weight and GEMM-output
reconstruction errors on realistic synthetic weight distributions must match QServe's
progressive quantization and plain round-to-nearest INT4.
"""


from repro.accuracy import run_accuracy_study
from repro.reporting import format_table


def test_accuracy_study(benchmark, emit):
    study = benchmark.pedantic(
        lambda: run_accuracy_study(n=512, k=1024, batch=64, group_size=64, seed=0),
        rounds=1, iterations=1,
    )
    rows = [
        [r["scheme"], r["distribution"], r["weight_rel_err"], r["weight_snr_db"], r["output_rel_err"]]
        for r in study.summary_rows()
    ]
    text = format_table(
        ["scheme", "weight distribution", "weight rel err", "weight SNR (dB)", "GEMM output rel err"],
        rows,
        title="Accuracy study — LQQ vs QServe vs RTN-INT4 on synthetic weight distributions",
        float_fmt="{:.4f}",
    )
    text += (
        f"\n\nMean GEMM-output RMSE:  LQQ {study.mean_output_rmse('lqq'):.5f}  "
        f"QServe {study.mean_output_rmse('qserve'):.5f}  RTN-INT4 {study.mean_output_rmse('rtn-int4'):.5f}"
    )
    emit("accuracy_study", text)

    # LQQ preserves accuracy: its error matches QServe's within 5% on every distribution.
    assert study.mean_output_rmse("lqq") <= study.mean_output_rmse("qserve") * 1.05
    for result in study.by_scheme("lqq"):
        partner = next(
            r for r in study.by_scheme("qserve") if r.distribution == result.distribution
        )
        assert result.output_error["relative_fro"] <= partner.output_error["relative_fro"] * 1.10
