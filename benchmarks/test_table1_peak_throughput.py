"""Table 1: peak token-generation throughput under the 80 GB memory constraint.

Regenerates the full system-level comparison: seven serving systems (TRT-FP16/W4A16/W8A8/FP8,
QServe, LiquidServe/wo, LiquidServe) x eight models, input 1024 / output 512 tokens, batch
size swept to find the peak.  Reported exactly as the paper does: tokens/s with the peak batch
size in parentheses, OOM/NA where the configuration cannot run.
"""


from repro.reporting import format_table
from repro.serving import ServingEngine, TABLE1_SYSTEMS

MODELS = ["llama1-30b", "llama2-7b", "llama2-13b", "llama2-70b",
          "llama3-8b", "mistral-7b", "yi-34b", "mixtral-8x7b"]


def build_table1():
    table = {}
    for model in MODELS:
        table[model] = {
            system: ServingEngine(system, model).peak_throughput(input_len=1024, output_len=512)
            for system in TABLE1_SYSTEMS
        }
    return table


def test_table1_peak_throughput(benchmark, emit):
    table = benchmark.pedantic(build_table1, rounds=1, iterations=1)

    rows = []
    for system in TABLE1_SYSTEMS:
        rows.append([system] + [table[model][system].label for model in MODELS])
    speedup_row = ["liquidserve speedup vs best baseline"]
    for model in MODELS:
        liquid = table[model]["liquidserve"].peak_throughput
        baselines = [
            table[model][s].peak_throughput for s in TABLE1_SYSTEMS if s not in ("liquidserve", "liquidserve-wo")
        ]
        best = max(b for b in baselines if b > 0)
        speedup_row.append(f"{liquid / best:.2f}x")
    rows.append(speedup_row)
    text = format_table(
        ["system"] + MODELS, rows,
        title="Table 1 — peak throughput (tokens/s) under 80 GB, input 1024 / output 512",
    )
    emit("table1_peak_throughput", text)

    # Structural assertions matching the paper's table.
    for model in MODELS:
        liquid = table[model]["liquidserve"].peak_throughput
        for system in TABLE1_SYSTEMS:
            if system == "liquidserve":
                continue
            assert liquid >= table[model][system].peak_throughput, (model, system)
    # OOM / NA pattern.
    assert table["llama2-70b"]["trt-fp16"].oom
    assert table["mixtral-8x7b"]["trt-fp16"].oom
    assert table["mixtral-8x7b"]["trt-w8a8"].oom
    # The GEMM kernel's own contribution (LiquidServe vs LiquidServe/wo), paper: 1.13-1.98x.
    for model in ("llama2-70b", "yi-34b", "mixtral-8x7b"):
        ratio = (
            table[model]["liquidserve"].peak_throughput
            / table[model]["liquidserve-wo"].peak_throughput
        )
        assert ratio > 1.05
