"""Figure 10: per-layer decode time breakdown (GEMM / Attention / Others) at Table-1 batches.

For LLaMA2-7B, LLaMA2-70B, LLaMA3-8B and Mistral-7B, regenerates the per-layer time split of
every serving system at the batch size where that system peaks in Table 1.  The shapes to
preserve: LiquidServe's GEMM latency is on par with or better than all baselines, and QServe's
GEMM bar is the largest among the W4A8 systems.
"""

import pytest

from repro.reporting import format_table
from repro.serving import ServingEngine, TABLE1_SYSTEMS

MODELS = ["llama2-7b", "llama2-70b", "llama3-8b", "mistral-7b"]
CONTEXT = 1024 + 256  # mean context of the in-1024 / out-512 workload


def build_breakdowns(model_name):
    rows = {}
    for system in TABLE1_SYSTEMS:
        engine = ServingEngine(system, model_name)
        result = engine.peak_throughput(batch_sizes=[16, 64, 128, 192, 256])
        if result.oom:
            rows[system] = None
            continue
        breakdown = engine.layer_breakdown(result.peak_batch_size, CONTEXT)
        rows[system] = (result.peak_batch_size, breakdown)
    return rows


@pytest.mark.parametrize("model_name", MODELS)
def test_fig10_layer_breakdown(benchmark, emit, model_name):
    rows = benchmark(build_breakdowns, model_name)
    table_rows = []
    for system, entry in rows.items():
        if entry is None:
            table_rows.append([system, "OOM", "-", "-", "-"])
            continue
        batch, bd = entry
        table_rows.append([system, batch, bd.gemm * 1e6, bd.attention * 1e6, bd.others * 1e6])
    text = format_table(
        ["system", "batch", "GEMM (us)", "Attention (us)", "Others (us)"],
        table_rows,
        title=f"Figure 10 — per-layer decode breakdown at peak batch, {model_name}",
        float_fmt="{:.1f}",
    )
    emit(f"fig10_breakdown_{model_name}", text)

    entries = {s: e for s, e in rows.items() if e is not None}
    liquid_batch, liquid_bd = entries["liquidserve"]
    # LiquidServe's per-layer GEMM time is lower than QServe's despite an equal or larger batch.
    qserve_batch, qserve_bd = entries["qserve"]
    assert liquid_bd.gemm < qserve_bd.gemm or liquid_batch > qserve_batch
    # And lower than LiquidServe/wo at the same serving stack.
    _, wo_bd = entries["liquidserve-wo"]
    assert liquid_bd.gemm < wo_bd.gemm * 1.05
