"""Figure 5: per-layer GEMM latency of existing systems (the motivation study).

Regenerates the batch-size sweep of single-transformer-layer GEMM latency for FP16, W8A8,
FP8, W4A16 and the existing W4A8 kernel (QServe) on LLaMA2-7B and Mixtral-8x7B.  The paper's
headline observation must hold: the existing W4A8 kernel is comparable to W8A8 at small batch
but up to ~2x slower at large batch, despite loading half the weight bytes.
"""

import pytest

from repro.kernels import get_kernel
from repro.reporting import format_series
from repro.serving import get_model
from repro.workloads import PAPER_BATCH_SIZES, decode_layer_gemms

SYSTEMS = ["fp16", "w8a8", "fp8", "w4a16", "qserve-w4a8"]


def layer_latency_us(kernel_name, model_name, batch):
    model = get_model(model_name)
    kernel = get_kernel(kernel_name)
    gemms = decode_layer_gemms(model, batch)
    if model.is_moe:
        total = sum(kernel.estimate(s, "H800").latency_s for s in gemms.attention_gemms())
        total += kernel.estimate(gemms.gate_up[0], "H800", group_sizes=gemms.gate_up).latency_s
        total += kernel.estimate(gemms.down[0], "H800", group_sizes=gemms.down).latency_s
    else:
        total = sum(kernel.estimate(s, "H800").latency_s for s in gemms.all())
    return total * 1e6


def build_sweep(model_name):
    return {
        kernel: [layer_latency_us(kernel, model_name, b) for b in PAPER_BATCH_SIZES]
        for kernel in SYSTEMS
    }


@pytest.mark.parametrize("model_name", ["llama2-7b", "mixtral-8x7b"])
def test_fig5_motivation_latency(benchmark, emit, model_name):
    sweep = benchmark(build_sweep, model_name)
    text = format_series(
        "batch", list(PAPER_BATCH_SIZES), sweep,
        title=f"Figure 5 — per-layer GEMM latency (us) on {model_name} (existing kernels only)",
        float_fmt="{:.1f}",
    )
    emit(f"fig5_motivation_{model_name}", text)

    qserve = sweep["qserve-w4a8"]
    w8a8 = sweep["w8a8"]
    # Small batch: the existing W4A8 kernel is at least comparable to W8A8 (memory-bound win).
    assert qserve[0] <= w8a8[0] * 1.1
    if model_name == "llama2-7b":
        # Large batch on the dense model: the existing W4A8 kernel falls clearly behind W8A8
        # and is no better than FP16 — the gap that motivates LiquidGEMM.  (On Mixtral the
        # per-expert GEMMs stay memory-bound up to batch 256, so the paper only reports the
        # FP8 / W4A16 baselines there.)
        assert qserve[-1] > 1.4 * w8a8[-1]
        assert qserve[-1] > 0.85 * sweep["fp16"][-1]
    else:
        # MoE observation: latency is substantially higher than LLaMA2-7B at every batch size.
        assert sweep["fp8"][-1] > 1.5 * 100.0
