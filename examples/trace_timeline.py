#!/usr/bin/env python3
"""Trace the agent-swarm prefix-cache workload and export a Perfetto timeline.

Attaches a :class:`repro.telemetry.Tracer` to the continuous-batching scheduler while it
serves an agent-swarm trace under a deliberately tight KV budget with the radix prefix
cache on — the busiest observable scenario the simulator has: chunked prefills, analytic
decode spans, KV-pressure preemptions, swap DMAs, and prefix-cache block evictions all
land in one event stream.  The script then:

* writes ``trace_timeline.json`` — Chrome trace-event format; open it at
  https://ui.perfetto.dev (or ``chrome://tracing``) to scrub the timeline: engine and KV
  tracks per replica, one async track per request, counter tracks for batch occupancy
  and KV blocks;
* writes ``trace_summary.json`` — the schema-validated roll-up (event counts,
  preemption reasons, counter statistics, engine memo-cache hit rates);
* prints the aggregate critical path: how the swarm's end-to-end seconds split across
  queue / prefill / decode / preempted / transfer, plus the slowest requests.  The
  split is *exact* — phase intervals tile each request's lifetime with no gaps, so the
  percentages sum to 100 by construction, not by rounding.

Tracing is observational: the served results here are bit-identical to an untraced run
(the tier-1 suite enforces this property-style).

Run:  PYTHONPATH=src python examples/trace_timeline.py
"""

from repro.serving import ContinuousBatchingScheduler, ServingEngine
from repro.serving.metrics import request_metrics
from repro.telemetry import (
    Tracer,
    request_breakdowns,
    write_chrome_trace,
    write_summary,
)
from repro.trace import _print_report
from repro.workloads.traces import agent_swarm_trace

MB = 2**20
GB = 2**30

#: 3 swarms x 4 agents x 4 steps = 48 requests sharing growing prefixes; the 512 MB
#: device budget forces prefix-cache evictions and swap preemptions into the timeline.
TRACE = agent_swarm_trace(3, 4, 4, 12.0, seed=13)


def main():
    tracer = Tracer(label="agent_swarm", sample_interval_s=0.05)
    scheduler = ContinuousBatchingScheduler(
        ServingEngine("liquidserve", "llama2-7b"),
        prefix_caching=True,
        kv_budget_bytes=512 * MB,
        host_kv_budget_bytes=GB,
        preemption_policy="swap",
        tracer=tracer,
    )
    stats = scheduler.run(TRACE)
    metrics = request_metrics(stats.requests)

    write_chrome_trace(tracer, "trace_timeline.json")
    summary = write_summary(tracer, "trace_summary.json", scheduler_stats=stats)
    print("wrote trace_timeline.json  (open at https://ui.perfetto.dev)")
    print("wrote trace_summary.json   (schema-validated roll-up)\n")

    _print_report(tracer, summary, top=5)

    breakdowns = request_breakdowns(tracer)
    assert all(bd.is_exact for bd in breakdowns)
    by_id = {m.request_id: m for m in metrics}
    assert all(bd.e2e_s == by_id[bd.request_id].latency_s for bd in breakdowns)
    print("\nevery request's phase breakdown tiles its latency exactly "
          f"({len(breakdowns)} requests, {tracer.num_events} events)")


if __name__ == "__main__":
    main()
