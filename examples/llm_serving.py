#!/usr/bin/env python3
"""End-to-end LLM serving study: Table 1-style peak throughput, a trace-driven request-level
simulation, and a multi-GPU tensor-parallel configuration.

Part 1 sweeps the batch size for every serving system on a chosen model under the 80 GB
memory budget and reports the peak throughput (the Table 1 cell).  Part 2 serves a ShareGPT-
like long-tail trace with Poisson arrivals through the continuous-batching scheduler —
chunked prefill, ragged decode batches and preemption under KV pressure — and reports the
SLO metrics (p50/p99 TTFT, TPOT, goodput).  Part 3 shows tensor parallelism turning a
single-GPU OOM (Llama2-70B in FP16) into a finite multi-GPU throughput number.

Run:  python examples/llm_serving.py [model-name]
      e.g. python examples/llm_serving.py llama2-70b
"""

import sys

from repro.core import simulate_serving
from repro.reporting import format_metrics, format_table
from repro.serving import ServingEngine, SloSpec, TABLE1_SYSTEMS


def peak_throughput_table(model_name: str) -> None:
    rows = []
    for system in TABLE1_SYSTEMS:
        engine = ServingEngine(system, model_name)
        result = engine.peak_throughput(input_len=1024, output_len=512)
        if result.oom:
            rows.append([system, "OOM", "-", "-", "-"])
            continue
        weight_gb = engine.weight_memory_bytes() / 2**30
        kv_gb = engine.kv_budget_bytes() / 2**30
        rows.append([system, f"{result.peak_throughput:,.0f}", result.peak_batch_size,
                     f"{weight_gb:.1f}", f"{kv_gb:.1f}"])
    print(format_table(
        ["system", "peak tokens/s", "batch", "weights (GB)", "KV budget (GB)"],
        rows,
        title=f"Peak decode throughput on {model_name} (input 1024 / output 512, 80 GB H800)",
    ))


def trace_simulation_demo(model_name: str) -> None:
    slo = SloSpec(ttft_s=2.0, tpot_s=0.1)
    sim = simulate_serving(
        "liquidserve",
        model_name,
        num_requests=500,
        arrival_rate_rps=20.0,
        seed=0,
        slo=slo,
    )
    stats, report = sim.stats, sim.slo
    print("\n" + format_metrics(
        {
            "completed requests": stats.completed_requests,
            "generated tokens": stats.generated_tokens,
            "throughput (tokens/s)": stats.throughput_tokens_per_s,
            "scheduler iterations": stats.num_iterations,
            "prefill chunks": stats.prefill_chunks,
            "preemptions": stats.preemptions,
            "peak batch size": stats.peak_batch_size,
            "peak KV utilization": stats.peak_kv_utilization,
            "p50 / p99 TTFT (s)": f"{report.p50_ttft_s:.3f} / {report.p99_ttft_s:.3f}",
            "p50 / p99 TPOT (ms)": f"{report.p50_tpot_s * 1e3:.2f} / {report.p99_tpot_s * 1e3:.2f}",
            "SLO attainment": f"{report.attainment:.1%}",
            "goodput (req/s)": report.goodput_rps,
        },
        title=(f"Trace-driven simulation on {model_name} with LiquidServe "
               f"(500 requests, Poisson 20 req/s, ShareGPT-like lengths; "
               f"SLO: TTFT<={slo.ttft_s}s, TPOT<={slo.tpot_s * 1e3:.0f}ms)"),
    ))


def tensor_parallel_demo() -> None:
    rows = []
    for tp in (1, 2, 4, 8):
        engine = ServingEngine("trt-fp16", "llama2-70b", tp_degree=tp)
        result = engine.peak_throughput(input_len=1024, output_len=512,
                                        batch_sizes=[1, 16, 64, 128, 256])
        rows.append([
            tp,
            result.label,
            f"{engine.weight_memory_bytes() / 2**30:.1f}",
            f"{engine.kv_budget_bytes() / 2**30:.1f}",
        ])
    print("\n" + format_table(
        ["tp_degree", "peak tokens/s (batch)", "weights/GPU (GB)", "KV/GPU (GB)"],
        rows,
        title="Tensor parallelism: Llama2-70B in FP16 goes from OOM to serving (H800)",
    ))


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "llama2-7b"
    peak_throughput_table(model_name)
    trace_simulation_demo(model_name)
    tensor_parallel_demo()


if __name__ == "__main__":
    main()
