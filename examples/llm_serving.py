#!/usr/bin/env python3
"""End-to-end LLM serving study: Table 1-style peak throughput plus a continuous-batching run.

Part 1 sweeps the batch size for every serving system on a chosen model under the 80 GB
memory budget and reports the peak throughput (the Table 1 cell).  Part 2 runs the
continuous-batching scheduler on a synthetic request trace with the LiquidServe configuration,
exercising the paged KV-cache allocator under churn.

Run:  python examples/llm_serving.py [model-name]
      e.g. python examples/llm_serving.py llama2-70b
"""

import sys

import numpy as np

from repro.reporting import format_table
from repro.serving import (
    ContinuousBatchingScheduler,
    Request,
    ServingEngine,
    TABLE1_SYSTEMS,
)


def peak_throughput_table(model_name: str) -> None:
    rows = []
    for system in TABLE1_SYSTEMS:
        engine = ServingEngine(system, model_name)
        result = engine.peak_throughput(input_len=1024, output_len=512)
        if result.oom:
            rows.append([system, "OOM", "-", "-", "-"])
            continue
        weight_gb = engine.weight_memory_bytes() / 2**30
        kv_gb = engine.kv_budget_bytes() / 2**30
        rows.append([system, f"{result.peak_throughput:,.0f}", result.peak_batch_size,
                     f"{weight_gb:.1f}", f"{kv_gb:.1f}"])
    print(format_table(
        ["system", "peak tokens/s", "batch", "weights (GB)", "KV budget (GB)"],
        rows,
        title=f"Peak decode throughput on {model_name} (input 1024 / output 512, 80 GB H800)",
    ))


def continuous_batching_demo(model_name: str) -> None:
    engine = ServingEngine("liquidserve", model_name)
    scheduler = ContinuousBatchingScheduler(engine, max_batch_size=32)
    rng = np.random.default_rng(0)
    requests = [
        Request(
            request_id=i,
            prompt_tokens=int(rng.integers(64, 512)),
            output_tokens=int(rng.integers(16, 128)),
            arrival_time_s=float(i) * 0.01,
        )
        for i in range(64)
    ]
    stats = scheduler.run(requests)
    print(f"\nContinuous batching on {model_name} with LiquidServe (64 synthetic requests):")
    print(f"  completed requests : {stats.completed_requests}")
    print(f"  generated tokens   : {stats.generated_tokens}")
    print(f"  throughput         : {stats.throughput_tokens_per_s:,.0f} tokens/s")
    print(f"  mean TTFT          : {stats.mean_ttft_s * 1e3:.1f} ms")
    print(f"  mean latency       : {stats.mean_latency_s:.2f} s")
    print(f"  peak batch size    : {stats.peak_batch_size}")
    print(f"  peak KV utilization: {stats.peak_kv_utilization:.1%}")


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "llama2-7b"
    peak_throughput_table(model_name)
    continuous_batching_demo(model_name)


if __name__ == "__main__":
    main()
