#!/usr/bin/env python3
"""Accuracy study: LiquidQuant vs QServe vs round-to-nearest INT4 plus SmoothQuant smoothing.

Quantizes synthetic weight matrices drawn from Gaussian, heavy-tailed and outlier-channel
distributions with the three schemes and reports weight / GEMM-output reconstruction error
(the offline proxy for the paper's perplexity study — see DESIGN.md).  The second part shows
the SmoothQuant grid search migrating activation outliers before LQQ quantization.

Run:  python examples/accuracy_study.py
"""

import numpy as np

from repro.accuracy import run_accuracy_study
from repro.quant import lqq_quantize, lqq_dequantize_fp, smooth_and_quantize
from repro.reporting import format_table


def accuracy_table() -> None:
    study = run_accuracy_study(n=512, k=1024, batch=64, group_size=64, seed=0)
    rows = [
        [r["scheme"], r["distribution"], r["weight_rel_err"], r["weight_snr_db"], r["output_rel_err"]]
        for r in study.summary_rows()
    ]
    print(format_table(
        ["scheme", "distribution", "weight rel err", "SNR (dB)", "output rel err"],
        rows,
        title="Quantization fidelity: LQQ vs QServe progressive vs RTN-INT4",
        float_fmt="{:.4f}",
    ))
    print(f"\nMean GEMM-output RMSE — LQQ: {study.mean_output_rmse('lqq'):.5f}, "
          f"QServe: {study.mean_output_rmse('qserve'):.5f}, "
          f"RTN-INT4: {study.mean_output_rmse('rtn-int4'):.5f}")


def smoothquant_demo() -> None:
    rng = np.random.default_rng(1)
    k = 512
    w = rng.normal(0, 0.02, (256, k))
    x = rng.normal(0, 1.0, (128, k))
    outliers = rng.choice(k, 6, replace=False)
    x[:, outliers] *= 25.0
    reference = x @ w.T

    plain = lqq_dequantize_fp(lqq_quantize(w))
    err_plain = np.linalg.norm(x @ plain.T - reference) / np.linalg.norm(reference)

    qw, search = smooth_and_quantize(x, w, lqq_quantize)
    w_hat = lqq_dequantize_fp(qw)
    x_smoothed = x / search.smooth_scale[None, :]
    err_smooth = np.linalg.norm(x_smoothed @ w_hat.T - reference) / np.linalg.norm(reference)

    print("\nSmoothQuant + LQQ on activations with channel outliers:")
    print(f"  best alpha from grid search : {search.alpha}")
    print(f"  output error without smoothing : {err_plain:.4f}")
    print(f"  output error with smoothing    : {err_smooth:.4f}")


def main() -> None:
    accuracy_table()
    smoothquant_demo()


if __name__ == "__main__":
    main()
