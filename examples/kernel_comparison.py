#!/usr/bin/env python3
"""Kernel comparison: Figure 12-style latency sweep across all kernels and batch sizes.

Evaluates every registered kernel (FP16, W8A8, FP8, W4A16, QServe W4A8, LiquidGEMM) on the
single-layer GEMM workload of a chosen model for batch sizes 4-256 and prints the latency
table plus the LiquidGEMM speedups, mirroring the paper's unified kernel benchmark.

Run:  python examples/kernel_comparison.py [model-name] [gpu]
      e.g. python examples/kernel_comparison.py llama2-13b H800
"""

import sys

from repro.kernels import default_comparison_set
from repro.reporting import format_series
from repro.serving import get_model
from repro.workloads import PAPER_BATCH_SIZES, decode_layer_gemms


def layer_latency_us(kernel, model, batch, gpu):
    gemms = decode_layer_gemms(model, batch)
    if model.is_moe:
        total = sum(kernel.estimate(s, gpu).latency_s for s in gemms.attention_gemms())
        total += kernel.estimate(gemms.gate_up[0], gpu, group_sizes=gemms.gate_up).latency_s
        total += kernel.estimate(gemms.down[0], gpu, group_sizes=gemms.down).latency_s
    else:
        total = sum(kernel.estimate(s, gpu).latency_s for s in gemms.all())
    return total * 1e6


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "llama2-7b"
    gpu = sys.argv[2] if len(sys.argv) > 2 else "H800"
    model = get_model(model_name)
    kernels = default_comparison_set()

    sweep = {
        name: [layer_latency_us(kernel, model, b, gpu) for b in PAPER_BATCH_SIZES]
        for name, kernel in kernels.items()
    }
    print(format_series(
        "batch", list(PAPER_BATCH_SIZES), sweep,
        title=f"Per-layer GEMM latency (us) on {model_name} / {gpu}",
        float_fmt="{:.1f}",
    ))

    print("\nLiquidGEMM speedup at each batch size:")
    for i, batch in enumerate(PAPER_BATCH_SIZES):
        speedups = {
            name: sweep[name][i] / sweep["liquidgemm"][i]
            for name in kernels if name != "liquidgemm"
        }
        rendered = "  ".join(f"{name}: {value:4.2f}x" for name, value in speedups.items())
        print(f"  batch {batch:>3}: {rendered}")


if __name__ == "__main__":
    main()
