#!/usr/bin/env python3
"""Quickstart: radix-tree prefix caching on an agentic workload.

Serves one agent-swarm trace twice through the continuous-batching scheduler — with the
prefix cache off, then on.  In an agent swarm every agent's prompt opens with the swarm's
shared base context plus the shared transcript of all prior steps, so the shareable
prefix *grows* as the swarm progresses: exactly the workload RadixAttention-style caching
targets.  With the cache on, the first agent to prefill a step publishes its full KV
blocks into a radix tree; every later agent forks those blocks at admission (one
refcount bump per block, zero new memory) and prefills only its private scratchpad.

The two runs complete the same requests and generate the same tokens — caching changes
*when* first tokens appear, never what is served — so the TTFT deltas printed below are
pure prefill savings.

Run:  PYTHONPATH=src python examples/agentic_prefix_caching.py
"""

import copy

from repro.serving import (
    ContinuousBatchingScheduler,
    ServingEngine,
    SloSpec,
    compute_slo_report,
)
from repro.workloads.traces import agent_swarm_trace

#: 4 swarms x 6 agents x 5 steps = 120 requests; each step adds 256 shared tokens on
#: top of a 512-token shared base context.
TRACE = agent_swarm_trace(4, 6, 5, 12.0, seed=0)
SLO = SloSpec(ttft_s=2.0, tpot_s=0.1)


def serve(prefix_caching):
    scheduler = ContinuousBatchingScheduler(
        ServingEngine("liquidserve", "llama2-7b"),
        prefix_caching=prefix_caching,
    )
    stats = scheduler.run([copy.copy(r) for r in TRACE])  # run() mutates its requests
    report = compute_slo_report(stats.requests, SLO, stats.simulated_time_s)
    return stats, report


def describe(label, stats, report):
    print(f"\n{label}")
    print(f"  completed {stats.completed_requests} requests, "
          f"{stats.generated_tokens:,} tokens in {stats.simulated_time_s:.2f} s simulated")
    print(f"  TTFT   p50 {report.p50_ttft_s * 1e3:7.1f} ms   "
          f"p99 {report.p99_ttft_s * 1e3:7.1f} ms")
    print(f"  goodput {report.goodput_rps:.2f} req/s")
    if stats.prefix_cache_hits:
        print(f"  cache: {stats.prefix_cache_hits}/{stats.prefix_cache_hits + stats.prefix_cache_misses} "
              f"admissions hit ({stats.prefix_hit_rate:.0%}), "
              f"{stats.prefix_saved_tokens:,} prefill tokens skipped, "
              f"{stats.prefix_blocks_inserted} blocks published, "
              f"{stats.prefix_blocks_evicted} evicted")


def main():
    off_stats, off_report = serve(prefix_caching=False)
    describe("cache off (every agent re-prefills the shared context)",
             off_stats, off_report)

    on_stats, on_report = serve(prefix_caching=True)
    describe("cache on (fork-on-admit from the radix tree)", on_stats, on_report)

    assert on_stats.generated_tokens == off_stats.generated_tokens  # identical service
    p50 = off_report.p50_ttft_s / on_report.p50_ttft_s
    p99 = off_report.p99_ttft_s / on_report.p99_ttft_s
    print(f"\nPrefix caching cuts TTFT {p50:.2f}x at p50 and {p99:.2f}x at p99 on this "
          f"swarm —\nthe shared transcript is prefilled once per step instead of once "
          f"per agent.")


if __name__ == "__main__":
    main()
