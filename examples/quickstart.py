#!/usr/bin/env python3
"""Quickstart: quantize a weight matrix with LiquidQuant and run a W4A8 GEMM.

Demonstrates the three things a downstream user does with the library:

1. offline quantization + dual-MMA packing of an FP16 weight matrix,
2. running the W4A8 GEMM numerically (integer accumulation + epilogue scaling),
3. reading the performance report (latency estimate, stage breakdown, bottleneck) for a GPU.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import LiquidGemmKernel, quantize_weights, w4a8_gemm
from repro.isa import InstructionStats


def main() -> None:
    rng = np.random.default_rng(0)

    # A single FFN projection of a small transformer: W is (N, K), activations are (M, K).
    n, k, batch = 4096, 4096, 64
    weight = rng.normal(0.0, 0.02, (n, k))
    activations = rng.normal(0.0, 1.0, (batch, k))

    # ------------------------------------------------------------------ offline
    prepared = quantize_weights(weight, group_size=64)
    print("== Offline quantization (LiquidQuant + dual-MMA packing) ==")
    print(f"  deployed size      : {prepared.deployed_bytes / 1e6:.2f} MB "
          f"({prepared.compression_ratio():.2f}x smaller than FP16)")

    # ------------------------------------------------------------------ online GEMM
    result = w4a8_gemm(activations, prepared, device="H800")
    print("\n== W4A8 GEMM (Y = X W^T) ==")
    print(f"  output shape       : {result.output.shape}")
    print(f"  relative error     : {result.error['relative_fro']:.4f} "
          f"(vs the FP reference; bounded by the 4-bit quantization error)")
    print(f"  estimated latency  : {result.report.latency_us:.1f} us on {result.report.gpu}")
    print(f"  bottleneck         : {result.report.breakdown.limited_by}")
    print(f"  dequant alpha      : {result.report.alpha:.3f} instructions/element")

    # ------------------------------------------------------------------ register-path check
    kernel = LiquidGemmKernel()
    stats = InstructionStats()
    register_tile, reference_tile = kernel.verify_tile_path(prepared, stats=stats)
    exact = np.array_equal(register_tile, reference_tile)
    print("\n== Emulated IMAD/XOR register path on one 64x64 tile ==")
    print(f"  bit-exact vs Equation 12 reference : {exact}")
    print(f"  emulated instructions issued       : {stats.total_instructions} "
          f"({stats.count('imad.u32')} IMAD, {stats.count('xor.b32')} XOR)")

    assert exact, "register path must match the reference dequantization"


if __name__ == "__main__":
    main()
