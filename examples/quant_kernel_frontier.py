#!/usr/bin/env python3
"""Sweeping quant format x kernel x KV format: the goodput-vs-accuracy frontier.

The unified kernel-backend layer makes the quantization decision a sweep axis: every
cell derives its system profile with a kernel and/or KV-format override
(``SystemProfile.derive``), the backend resolves the kernel's GEMM cost parameters and
the KV format's bytes-per-element once per configuration, and the sweep engine prices
the full serving simulation for each combination.  The payload's ``frontier`` section
then answers the deployment question directly: which backend configurations buy
goodput-per-GPU without paying accuracy (the seeded weight-quantization RMSE proxy of
:mod:`repro.accuracy.study`), and which accuracy hits buy nothing.

Run:  PYTHONPATH=src python examples/quant_kernel_frontier.py
"""

from repro.backend import scheme_output_rmse, weight_quant_scheme
from repro.sweep import SweepGrid, run_sweep

GRID = SweepGrid(
    systems=("trt-fp16", "liquidserve", "qserve"),
    kernels=(None, "liquidgemm", "qserve-w4a8", "w4a16"),
    kv_formats=(None, "int8", "int4"),
    arrival_rates_rps=(20.0,),
    num_requests=80,
    kv_budget_bytes=2 * 2**30,
)


def main():
    payload = run_sweep(GRID)
    print(
        f"{payload['num_cells']} cells "
        f"(3 systems x 4 kernels x 3 KV formats) in {payload['wall_time_s']:.2f}s "
        f"({payload['workers']} workers)\n"
    )
    header = (
        f"{'system':<12} {'kernel':<12} {'kv':<5} "
        f"{'tok/s':>8} {'goodput/GPU':>12} {'rmse':>9} {'attain':>7}"
    )
    print(header)
    print("-" * len(header))
    frontier_indices = {p["index"] for p in payload["frontier"]["points"]}
    for cell in payload["cells"]:
        metrics = cell["metrics"]
        rmse = scheme_output_rmse(weight_quant_scheme(cell["kernel"]))
        marker = "  <- frontier" if cell["index"] in frontier_indices else ""
        print(
            f"{cell['system']:<12} {cell['kernel']:<12} {cell['kv_format']:<5} "
            f"{metrics['throughput_tokens_per_s']:>8,.0f} "
            f"{metrics['goodput_rps']:>12.2f} "
            f"{rmse:>9.4f} "
            f"{metrics['slo_attainment']:>7.2%}{marker}"
        )

    frontier = payload["frontier"]
    print(
        f"\nPareto frontier ({frontier['objective']}): "
        f"{frontier['num_points']} points, {frontier['dominated_cells']} dominated cells"
    )
    for point in frontier["points"]:
        print(
            f"  {point['system']:<12} kernel={point['kernel']:<12} "
            f"kv={point['kv_format']:<5} "
            f"goodput/GPU={point['goodput_per_gpu_rps']:.2f} rps  "
            f"rmse={point['accuracy_rmse']:.4f}  "
            f"SLO attainment={point['slo_attainment']:.2%}"
        )


if __name__ == "__main__":
    main()
