#!/usr/bin/env python3
"""Quickstart: a process-parallel policy sweep over the serving simulator.

Expands a declarative grid — two serving systems x two preemption policies x two arrival
rates x two cluster shapes (16 cells) — over a KV-constrained ShareGPT-like workload,
executes it with one worker process per CPU (each worker keeps a warm, memo-cached
serving engine per configuration), and prints the consolidated results as a table.

Every cell's trace seed is derived from its parameter key, so re-running the sweep — or
re-running it serially, or after adding grid values — reproduces the surviving cells'
numbers byte for byte.  The same payload can be written as schema-validated JSON with
``repro.sweep.write_sweep_json`` (or from the CLI: ``python -m repro.sweep``).

Run:  PYTHONPATH=src python examples/policy_sweep.py
"""

from repro.sweep import SINGLE_REPLICA, SweepGrid, run_sweep

GRID = SweepGrid(
    systems=("liquidserve", "trt-fp16"),
    preemption_policies=("recompute", "hybrid"),
    arrival_rates_rps=(15.0, 25.0),
    cluster_shapes=(
        SINGLE_REPLICA,
        {"mode": "colocated", "num_replicas": 2, "router": "least-tokens"},
    ),
    num_requests=150,
    kv_budget_bytes=2 * 2**30,
    host_kv_budget_bytes=4 * 2**30,
)


def main():
    payload = run_sweep(GRID)
    print(
        f"{payload['num_cells']} cells in {payload['wall_time_s']:.2f}s "
        f"({payload['workers']} workers)\n"
    )
    header = (
        f"{'system':<12} {'preempt':<10} {'rate':>5} {'cluster':<14} "
        f"{'tok/s':>8} {'p99 TTFT':>9} {'goodput':>8} {'attain':>7}"
    )
    print(header)
    print("-" * len(header))
    for cell in payload["cells"]:
        metrics = cell["metrics"]
        print(
            f"{cell['system']:<12} {cell['preemption_policy']:<10} "
            f"{cell['arrival_rate_rps']:>5.0f} {cell['cluster']['label']:<14} "
            f"{metrics['throughput_tokens_per_s']:>8,.0f} "
            f"{metrics['p99_ttft_s'] * 1e3:>7.1f}ms "
            f"{metrics['goodput_rps']:>8.2f} {metrics['slo_attainment']:>7.2%}"
        )


if __name__ == "__main__":
    main()
