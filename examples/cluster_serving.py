#!/usr/bin/env python3
"""Quickstart: cluster-level serving with a pluggable router.

Serves the same prefill-heavy ShareGPT-like trace two ways at equal total GPU count:

* **co-located** — four identical replicas behind a least-outstanding-tokens router
  (the data-parallel baseline); every replica interleaves prefill chunks with decode
  batches, so a long prompt's TTFT pays for resident decodes and vice versa;
* **disaggregated** — two prefill replicas + two decode replicas (DistServe-style); a
  request prefills (and emits its first token) on a prefill replica, then its KV blocks
  migrate over the GPU interconnect to a decode replica, which generates the rest.

Run:  PYTHONPATH=src python examples/cluster_serving.py
"""

from repro.core import simulate_cluster
from repro.workloads.traces import LengthDistribution

PROMPTS = LengthDistribution.lognormal(median=1024.0, sigma=0.9, maximum=4096)
OUTPUTS = LengthDistribution.lognormal(median=64.0, sigma=0.8, maximum=512)
WORKLOAD = dict(
    num_requests=200,
    arrival_rate_rps=24.0,
    seed=0,
    prompt_lengths=PROMPTS,
    output_lengths=OUTPUTS,
)


def describe(label, sim):
    report = sim.slo
    print(f"\n{label}  ({sim.mode}, router={sim.router}, "
          f"replicas={','.join(sim.replica_roles)})")
    print(f"  completed {report.completed} requests, "
          f"{sim.throughput_tokens_per_s:,.0f} tokens/s cluster-wide")
    print(f"  TTFT   p50 {report.p50_ttft_s * 1e3:7.1f} ms   "
          f"p99 {report.p99_ttft_s * 1e3:7.1f} ms")
    print(f"  TPOT   p50 {report.p50_tpot_s * 1e3:7.2f} ms   "
          f"p99 {report.p99_tpot_s * 1e3:7.2f} ms")
    print(f"  queueing {report.mean_queue_time_s * 1e3:.2f} ms mean, "
          f"goodput {report.goodput_rps:.2f} req/s")
    if sim.result.kv_handoffs:
        print(f"  KV handoffs: {sim.result.kv_handoffs} "
              f"({sim.result.kv_handoff_bytes / 2**30:.2f} GiB over the interconnect, "
              f"{sim.result.kv_handoff_s:.3f} s total)")


def main():
    colocated = simulate_cluster(
        "liquidserve", "llama2-7b",
        mode="colocated", num_replicas=4, router="least-tokens",
        **WORKLOAD,
    )
    describe("co-located 4x", colocated)

    disaggregated = simulate_cluster(
        "liquidserve", "llama2-7b",
        mode="disaggregated", num_prefill_replicas=2, num_decode_replicas=2,
        **WORKLOAD,
    )
    describe("disaggregated 2p+2d", disaggregated)

    ratio = colocated.slo.p99_ttft_s / disaggregated.slo.p99_ttft_s
    print(f"\nDisaggregation cuts p99 TTFT {ratio:.2f}x at equal GPU count by keeping "
          f"prefill iterations free of decode interference —\nthe price is the KV handoff "
          f"tax printed above (DistServe-style).")


if __name__ == "__main__":
    main()
