#!/usr/bin/env python3
"""Roofline and cost-model exploration (Figure 1c and Section 3.3).

Prints the roofline ridge points for every precision configuration on A100 and H100, the
memory/compute transition batch sizes, the dequantization instruction budget, and a
sensitivity sweep showing how the W4A8 transition point moves as memory bandwidth scales —
the hardware-trend argument of Section 3.3 ("Tensor Core performance is improving faster than
memory bandwidth").

Run:  python examples/roofline_and_costmodel.py
"""

from repro.costmodel import STANDARD_CONFIGS, alpha_budget, ridge_points, roofline_curve, \
    transition_batch_size
from repro.gpu import A100, H100
from repro.reporting import format_series, format_table


def main() -> None:
    batches = [1, 4, 16, 64, 150, 256, 300, 512]
    for gpu in (A100, H100):
        curves = {
            name: [p.attainable_tops / 1e12 for p in roofline_curve(gpu, cfg, batches)]
            for name, cfg in STANDARD_CONFIGS.items()
            if gpu.supports_precision(cfg.mma_precision)
        }
        print(format_series("batch", batches, curves,
                            title=f"Attainable TOPS on {gpu.name} (Figure 1c)", float_fmt="{:.0f}"))
        print()
        print(format_table(["config", "ridge batch"], sorted(ridge_points(gpu).items()),
                           title=f"Memory-to-compute transition points on {gpu.name}"))
        print()

    print(format_table(
        ["condition", "alpha budget"],
        [
            ["memory-bound (T_DQ <= T_LD)", alpha_budget(H100, "int4", "int8")],
            ["compute-bound at M=150", alpha_budget(H100, "int4", "int8", 150)],
        ],
        title="Dequantization instruction budget on H100 (Section 3.3)",
    ))

    # Hardware-trend sensitivity: scale memory bandwidth while holding Tensor Cores fixed.
    rows = []
    for bandwidth_scale in (0.5, 0.75, 1.0, 1.5, 2.0):
        gpu = H100.scaled(bandwidth=bandwidth_scale)
        rows.append([
            f"{bandwidth_scale:.2f}x",
            transition_batch_size(gpu, "int8", "int8"),
            transition_batch_size(gpu, "int4", "int8"),
        ])
    print()
    print(format_table(
        ["memory bandwidth", "W8A8 transition batch", "W4A8 transition batch"],
        rows,
        title="Sensitivity: slower memory pushes the compute-bound transition to larger batches",
    ))


if __name__ == "__main__":
    main()
