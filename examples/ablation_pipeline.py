#!/usr/bin/env python3
"""Ablation walkthrough: how much each LiquidGEMM technique contributes (Figure 13).

Runs the event-driven warp-group pipeline simulator for the four ablation configurations
(Baseline, +LQQ, +ExCP, +ImFP) on a chosen model's layer GEMMs, and prints per-batch speedups
together with the pipeline diagnostics (resource utilization and bubble fraction) that explain
*why* ExCP underperforms ImFP.

Run:  python examples/ablation_pipeline.py [model-name]
"""

import sys

from repro.costmodel import GemmShape
from repro.kernels import ablation_kernels
from repro.reporting import format_series, format_table
from repro.serving import get_model
from repro.workloads import PAPER_BATCH_SIZES, decode_layer_gemms


def layer_latency(kernel, model, batch):
    gemms = decode_layer_gemms(model, batch)
    if model.is_moe:
        total = sum(kernel.estimate(s, "H800", use_pipeline_sim=True).latency_s
                    for s in gemms.attention_gemms())
        total += kernel.estimate(gemms.gate_up[0], "H800", use_pipeline_sim=True,
                                 group_sizes=gemms.gate_up).latency_s
        total += kernel.estimate(gemms.down[0], "H800", use_pipeline_sim=True,
                                 group_sizes=gemms.down).latency_s
        return total
    return sum(kernel.estimate(s, "H800", use_pipeline_sim=True).latency_s for s in gemms.all())


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "llama2-7b"
    model = get_model(model_name)
    kernels = ablation_kernels()

    latencies = {
        name: [layer_latency(kernel, model, b) for b in PAPER_BATCH_SIZES]
        for name, kernel in kernels.items()
    }
    speedups = {
        name: [latencies["baseline"][i] / latencies[name][i] for i in range(len(PAPER_BATCH_SIZES))]
        for name in kernels
    }
    print(format_series(
        "batch", list(PAPER_BATCH_SIZES), speedups,
        title=f"Ablation speedup over Baseline on {model_name} (Figure 13)",
    ))

    # Pipeline diagnostics for the largest batch on the FFN GEMM.
    shape = GemmShape(PAPER_BATCH_SIZES[-1], 2 * model.intermediate_size, model.hidden_size)
    rows = []
    for name, kernel in kernels.items():
        report = kernel.estimate(shape, "H800", use_pipeline_sim=True)
        pipeline = report.pipeline
        rows.append([
            name,
            report.latency_us,
            pipeline.utilization("tensor"),
            pipeline.utilization("cuda"),
            pipeline.utilization("tma"),
            pipeline.bubble_fraction,
        ])
    print()
    print(format_table(
        ["config", "latency (us)", "tensor util", "cuda util", "tma util", "bubbles"],
        rows,
        title=f"Pipeline diagnostics for the FFN GEMM at batch {PAPER_BATCH_SIZES[-1]}",
    ))


if __name__ == "__main__":
    main()
